package workloads

import (
	"testing"

	"spcd/internal/commmatrix"
)

// drain runs a thread's stream to completion, returning all accesses.
func drain(r Run, t int) []Access {
	var out []Access
	buf := make([]Access, 256)
	for {
		n := r.Next(t, buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

// groundTruth replays all threads of a run and builds the page-sharing
// communication matrix: for each page, every pair of threads that both
// touch it communicates in proportion to their access counts.
func groundTruth(w Workload, seed int64) *commmatrix.Matrix {
	r := w.NewRun(seed)
	n := w.NumThreads()
	perPage := map[uint64][]uint32{} // page -> access count per thread
	for t := 0; t < n; t++ {
		for _, a := range drain(r, t) {
			page := a.Addr / PageBytes
			counts := perPage[page]
			if counts == nil {
				counts = make([]uint32, n)
				perPage[page] = counts
			}
			counts[t]++
		}
	}
	m := commmatrix.New(n)
	for _, counts := range perPage {
		for i := 0; i < n; i++ {
			if counts[i] == 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if counts[j] == 0 {
					continue
				}
				min := counts[i]
				if counts[j] < min {
					min = counts[j]
				}
				m.Add(i, j, float64(min))
			}
		}
	}
	return m
}

func TestNPBNamesConstructAll(t *testing.T) {
	for _, name := range NPBNames {
		w, err := NewNPB(name, 32, ClassTiny)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Name() != name || w.NumThreads() != 32 {
			t.Errorf("%s: identity wrong", name)
		}
		if w.AccessesPerThread() == 0 {
			t.Errorf("%s: zero work", name)
		}
	}
	if _, err := NewNPB("XX", 32, ClassTiny); err == nil {
		t.Error("unknown kernel should error")
	}
}

func TestStreamsDeterministicPerSeed(t *testing.T) {
	w, _ := NewNPB("SP", 8, ClassTiny)
	a := drain(w.NewRun(42), 3)
	b := drain(w.NewRun(42), 3)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := drain(w.NewRun(43), 3)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should produce different streams")
	}
}

func TestStreamsIndependentOfInterleaving(t *testing.T) {
	w, _ := NewNPB("BT", 4, ClassTiny)
	// Draining thread 2 first must not change thread 1's stream.
	r1 := w.NewRun(7)
	drain(r1, 2)
	s1 := drain(r1, 1)
	r2 := w.NewRun(7)
	s2 := drain(r2, 1)
	if len(s1) != len(s2) {
		t.Fatal("stream length depends on interleaving")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("stream content depends on interleaving")
		}
	}
}

func TestWorkAmountMatchesSpec(t *testing.T) {
	w, _ := NewNPB("LU", 4, ClassTiny)
	got := uint64(len(drain(w.NewRun(1), 0)))
	if got != w.AccessesPerThread() {
		t.Errorf("drained %d accesses, want %d", got, w.AccessesPerThread())
	}
}

func TestDurationScales(t *testing.T) {
	dc, _ := NewNPB("DC", 8, ClassTiny)
	cg, _ := NewNPB("CG", 8, ClassTiny)
	sp, _ := NewNPB("SP", 8, ClassTiny)
	if dc.AccessesPerThread() <= sp.AccessesPerThread() {
		t.Error("DC should run longer than SP")
	}
	if cg.AccessesPerThread() >= sp.AccessesPerThread() {
		t.Error("CG should run shorter than SP")
	}
}

func TestGridFor(t *testing.T) {
	cases := []struct{ n, rows, cols int }{
		{32, 8, 4}, {16, 4, 4}, {8, 4, 2}, {4, 2, 2}, {2, 2, 1}, {7, 7, 1},
	}
	for _, c := range cases {
		r, col := gridFor(c.n)
		if r != c.rows || col != c.cols {
			t.Errorf("gridFor(%d) = %dx%d, want %dx%d", c.n, r, col, c.rows, c.cols)
		}
		if r*col != c.n {
			t.Errorf("gridFor(%d) does not multiply back", c.n)
		}
	}
}

func TestSPPatternIsNeighbourHeavy(t *testing.T) {
	w, _ := NewNPB("SP", 8, ClassTiny) // grid 4x2
	m := groundTruth(w, 11)
	// Grid neighbours of thread 0 (4x2 row-major): 1 (east) and 2 (south).
	neighbour := m.At(0, 1) + m.At(0, 2)
	distant := m.At(0, 5) + m.At(0, 7)
	if neighbour <= 4*distant {
		t.Errorf("SP: neighbour comm %g should dominate distant %g", neighbour, distant)
	}
	if m.Heterogeneity() < 0.5 {
		t.Errorf("SP heterogeneity = %g, want clearly heterogeneous", m.Heterogeneity())
	}
}

func TestFTPatternIsHomogeneous(t *testing.T) {
	w, _ := NewNPB("FT", 8, ClassTiny)
	m := groundTruth(w, 11)
	if m.Total() == 0 {
		t.Fatal("FT should communicate")
	}
	if h := m.Heterogeneity(); h > 0.4 {
		t.Errorf("FT heterogeneity = %g, want homogeneous (< 0.4)", h)
	}
}

func TestEPCommunicatesAlmostNothing(t *testing.T) {
	ep, _ := NewNPB("EP", 8, ClassTiny)
	sp, _ := NewNPB("SP", 8, ClassTiny)
	epComm := groundTruth(ep, 11).Total()
	spComm := groundTruth(sp, 11).Total()
	if epComm*20 > spComm {
		t.Errorf("EP comm %g should be tiny versus SP %g", epComm, spComm)
	}
}

func TestHeterogeneityOrdering(t *testing.T) {
	// The paper's classification: BT/SP/LU/UA/MG heterogeneous, FT/IS/EP
	// homogeneous. CG/DC are weakly heterogeneous.
	het := map[string]float64{}
	for _, name := range NPBNames {
		w, _ := NewNPB(name, 32, ClassTiny)
		het[name] = groundTruth(w, 5).Heterogeneity()
	}
	for _, strong := range []string{"BT", "SP", "LU", "UA", "MG"} {
		for _, homo := range []string{"FT", "IS"} {
			if het[strong] <= het[homo] {
				t.Errorf("%s (%.2f) should be more heterogeneous than %s (%.2f)",
					strong, het[strong], homo, het[homo])
			}
		}
	}
}

func TestPairRegionSymmetric(t *testing.T) {
	if pairRegion(3, 7, 32, 4096) != pairRegion(7, 3, 32, 4096) {
		t.Error("pair region must not depend on argument order")
	}
	if pairRegion(0, 1, 32, 4096) == pairRegion(0, 2, 32, 4096) {
		t.Error("distinct pairs need distinct regions")
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	w, _ := NewNPB("SP", 32, ClassSmall)
	r := w.NewRun(1)
	buf := make([]Access, 4096)
	for t0 := 0; t0 < 4; t0++ {
		n := r.Next(t0, buf)
		for _, a := range buf[:n] {
			inGlobal := a.Addr < pairBase
			inPair := a.Addr >= pairBase && a.Addr < privateBase
			inPriv := a.Addr >= privateBase
			if !inGlobal && !inPair && !inPriv {
				t.Fatalf("address %#x outside all regions", a.Addr)
			}
		}
	}
}

func TestSynthSpecValidation(t *testing.T) {
	bad := []SynthSpec{
		{},
		{KernelName: "X", Threads: 0, Class: ClassTiny},
		{KernelName: "X", Threads: 2, Class: ClassTiny, PairRatio: 0.9, GlobalRatio: 0.2},
		{KernelName: "X", Threads: 2, Class: ClassTiny, WriteRatio: 1.5},
		{KernelName: "X", Threads: 2, Class: Class{}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestCommGraphs(t *testing.T) {
	if got := Ring1D(0, 8); len(got) != 2 || got[0].Peer != 1 || got[1].Peer != 7 {
		t.Errorf("Ring1D(0,8) = %v", got)
	}
	if Ring1D(0, 1) != nil {
		t.Error("Ring1D with one thread should be nil")
	}
	g := Grid2D(2, 2)
	if got := g(0, 4); len(got) != 2 {
		t.Errorf("corner of 2x2 grid should have 2 neighbours, got %v", got)
	}
	if got := Grid2D(3, 3)(4, 9); len(got) != 4 {
		t.Errorf("center of 3x3 grid should have 4 neighbours, got %v", got)
	}
	mg := Multigrid(0, 16)
	if len(mg) <= 2 {
		t.Errorf("Multigrid should add distant partners, got %v", mg)
	}
	pipe := Pipeline(0, 4)
	if len(pipe) != 1 || pipe[0].Peer != 1 {
		t.Errorf("Pipeline(0,4) = %v", pipe)
	}
	irr := Irregular(3)(5, 32)
	if len(irr) != 3 {
		t.Errorf("Irregular(3) should give 3 peers, got %v", irr)
	}
	irr2 := Irregular(3)(5, 32)
	for i := range irr {
		if irr[i] != irr2[i] {
			t.Error("Irregular must be stable across calls")
		}
	}
}

// --- Producer/consumer ---

func TestProducerConsumerValidation(t *testing.T) {
	if _, err := NewProducerConsumer(3, ClassTiny, 2, 100); err == nil {
		t.Error("odd thread count should error")
	}
	if _, err := NewProducerConsumer(2, ClassTiny, 2, 100); err == nil {
		t.Error("two threads cannot form distinct phases")
	}
	if _, err := NewProducerConsumer(8, ClassTiny, 0, 100); err == nil {
		t.Error("zero phases should error")
	}
	if _, err := NewProducerConsumer(8, ClassTiny, 2, 0); err == nil {
		t.Error("zero phase length should error")
	}
}

func TestProducerConsumerPartners(t *testing.T) {
	p, _ := NewProducerConsumer(8, ClassTiny, 2, 100)
	if p.PartnerInPhase(0, 0) != 1 || p.PartnerInPhase(1, 0) != 0 {
		t.Error("phase 0 should pair neighbours")
	}
	if p.PartnerInPhase(0, 1) != 4 || p.PartnerInPhase(4, 1) != 0 {
		t.Error("phase 1 should pair distant threads")
	}
	for ph := 0; ph < 2; ph++ {
		for th := 0; th < 8; th++ {
			if p.PartnerInPhase(p.PartnerInPhase(th, ph), ph) != th {
				t.Fatalf("partner relation not symmetric at phase %d thread %d", ph, th)
			}
		}
	}
}

func TestProducerConsumerPhaseCommunication(t *testing.T) {
	p, _ := NewProducerConsumer(8, ClassTiny, 2, 2000)
	r := p.NewRun(3)
	// First phase accesses of threads 0 and 1 overlap in their pair
	// region; second phase accesses of 0 overlap with thread 4's.
	pages := func(t0 int, from, to int) map[uint64]bool {
		all := drain(r, t0)
		set := map[uint64]bool{}
		for _, a := range all[from:to] {
			if a.Addr >= pairBase && a.Addr < privateBase {
				set[a.Addr/PageBytes] = true
			}
		}
		return set
	}
	ph1t0 := pages(0, 0, 2000)
	r = p.NewRun(3)
	ph1t1 := pages(1, 0, 2000)
	r = p.NewRun(3)
	ph2t0 := pages(0, 2000, 4000)
	r = p.NewRun(3)
	ph2t4 := pages(4, 2000, 4000)

	if !overlaps(ph1t0, ph1t1) {
		t.Error("phase 1: threads 0 and 1 should share pages")
	}
	if !overlaps(ph2t0, ph2t4) {
		t.Error("phase 2: threads 0 and 4 should share pages")
	}
	if overlaps(ph1t0, ph2t4) {
		t.Error("phase 1 pages of thread 0 should not coincide with thread 4's phase 2 region... (distinct pair regions)")
	}
}

func overlaps(a, b map[uint64]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

func TestProducerConsumerWorkTotal(t *testing.T) {
	p, _ := NewProducerConsumer(4, ClassTiny, 3, 500)
	if p.AccessesPerThread() != 1500 {
		t.Errorf("AccessesPerThread = %d, want 1500", p.AccessesPerThread())
	}
	if got := uint64(len(drain(p.NewRun(1), 2))); got != 1500 {
		t.Errorf("drained %d, want 1500", got)
	}
	if p.Name() == "" || p.NumThreads() != 4 || p.ComputeCyclesPerAccess() < 0 {
		t.Error("identity accessors broken")
	}
	if p.PhaseLength() != 500 {
		t.Errorf("PhaseLength = %d", p.PhaseLength())
	}
}
