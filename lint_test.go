package spcd

import (
	"os"
	"testing"

	"spcd/internal/analysis"
)

// TestLint runs every spcdlint analyzer (internal/analysis) over the whole
// module, so `go test ./...` — the tier-1 gate — fails the moment a
// determinism, lock-discipline, or API-contract violation is introduced.
// Findings can be suppressed per line with `//lint:ignore <rule> <reason>`;
// see DESIGN.md ("Determinism & static analysis").
func TestLint(t *testing.T) {
	root, err := os.Getwd() // go test runs package spcd at the module root
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	diags, _, err := loader.AnalyzeModule(analysis.All, analysis.AllModule)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("run `go run ./cmd/spcdlint ./...` to reproduce; suppress intentional cases with //lint:ignore <rule> <reason>")
	}
}
