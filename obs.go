package spcd

import (
	"io"

	"spcd/internal/engine"
	"spcd/internal/obs"
	"spcd/internal/policy"
)

// Probe collects one run's observability data: a virtual-time metrics time
// series plus a structured event trace (see internal/obs). One Probe
// observes exactly one run; build a fresh one per simulation. A nil Probe
// disables observability at zero cost.
type Probe = obs.Probe

// ObsOptions configures a Probe (snapshot interval, trace clock).
type ObsOptions = obs.Options

// NewProbe creates an observability probe for one simulation run. The zero
// ObsOptions lets the engine choose the snapshot interval (~256 rows per
// run) and the simulated machine's clock for trace timestamps.
func NewProbe(opts ObsOptions) *Probe { return obs.New(opts) }

// RunObserved is Run with observability: the probe records the run's
// metrics time series and event trace, exportable afterwards with
// WriteChromeTrace and WriteTimeSeriesCSV. All probe timestamps are
// simulated cycles, so same-seed runs produce byte-identical artifacts —
// and the returned Metrics are identical to an unobserved run's.
func RunObserved(m *Machine, w Workload, policyName string, seed int64, pr *Probe) (Metrics, error) {
	p, err := policy.Tuned(policyName, w, m)
	if err != nil {
		return Metrics{}, err
	}
	return engine.Run(engine.Config{Machine: m, Workload: w, Policy: p, Seed: seed, Probe: pr})
}

// WriteChromeTrace exports a probe's data in the Chrome trace_event JSON
// format, loadable in chrome://tracing or https://ui.perfetto.dev (see the
// README walkthrough).
func WriteChromeTrace(w io.Writer, pr *Probe) error { return obs.WriteChromeTrace(w, pr) }

// WriteTimeSeriesCSV exports a probe's sampled metrics registry as CSV:
// one row per snapshot, counters as per-interval deltas.
func WriteTimeSeriesCSV(w io.Writer, pr *Probe) error { return obs.WriteTimeSeriesCSV(w, pr) }

// TraceRun labels one run's probe for merged trace export.
type TraceRun = obs.TraceRun

// WriteChromeTraceMerged exports several runs' probes — a sweep's worth of
// experiments, say — into a single Chrome trace, each run in its own
// disjoint pid namespace so the runs appear as side-by-side process groups
// in chrome://tracing or Perfetto.
func WriteChromeTraceMerged(w io.Writer, runs []TraceRun) error {
	return obs.WriteChromeTraceMerged(w, runs)
}
