package spcd_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"spcd"
)

// runObservedArtifacts executes one observed CG run and returns the two
// exported artifacts.
func runObservedArtifacts(t *testing.T, policy string, seed int64) (trace, csv []byte) {
	t.Helper()
	mach := spcd.DefaultMachine()
	w, err := spcd.NPB("CG", 8, spcd.ClassTest)
	if err != nil {
		t.Fatal(err)
	}
	pr := spcd.NewProbe(spcd.ObsOptions{})
	if _, err := spcd.RunObserved(mach, w, policy, seed, pr); err != nil {
		t.Fatal(err)
	}
	var tb, cb bytes.Buffer
	if err := spcd.WriteChromeTrace(&tb, pr); err != nil {
		t.Fatal(err)
	}
	if err := spcd.WriteTimeSeriesCSV(&cb, pr); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), cb.Bytes()
}

// TestObservedArtifactsDeterministic is the obs determinism gate: two
// same-seed runs must export byte-identical Chrome-trace JSON and CSV —
// the property that makes traces diffable across machines and commits.
func TestObservedArtifactsDeterministic(t *testing.T) {
	for _, policy := range []string{"os", "spcd"} {
		t.Run(policy, func(t *testing.T) {
			t1, c1 := runObservedArtifacts(t, policy, 42)
			t2, c2 := runObservedArtifacts(t, policy, 42)
			if !bytes.Equal(t1, t2) {
				t.Error("same-seed Chrome traces differ")
			}
			if !bytes.Equal(c1, c2) {
				t.Error("same-seed CSV time series differ")
			}

			var doc struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(t1, &doc); err != nil {
				t.Fatalf("trace is not valid JSON: %v", err)
			}
			if len(doc.TraceEvents) == 0 {
				t.Error("trace has no events")
			}
			lines := strings.Split(strings.TrimRight(string(c1), "\n"), "\n")
			if len(lines) < 3 {
				t.Errorf("CSV has %d lines; want a header and multiple samples", len(lines))
			}
			if !strings.HasPrefix(lines[0], "time_cycles,") {
				t.Errorf("CSV header = %q", lines[0])
			}
		})
	}
}

// TestExperimentObserve checks the Experiment integration: the Observe hook
// receives every (policy, rep) pair and its probes record the runs.
func TestExperimentObserve(t *testing.T) {
	mach := spcd.DefaultMachine()
	w, err := spcd.NPB("CG", 8, spcd.ClassTest)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	probes := make(map[string]*spcd.Probe)
	_, err = spcd.Experiment{
		Machine:  mach,
		Workload: w,
		Policies: []string{"os", "spcd"},
		Reps:     2,
		Observe: func(policy string, rep int) *spcd.Probe {
			pr := spcd.NewProbe(spcd.ObsOptions{})
			mu.Lock()
			probes[fmt.Sprintf("%s/%d", policy, rep)] = pr
			mu.Unlock()
			return pr
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 4 {
		t.Fatalf("Observe called for %d runs, want 4", len(probes))
	}
	for key, pr := range probes {
		if len(pr.Samples()) == 0 {
			t.Errorf("%s: probe recorded no samples", key)
		}
	}
}
