package spcd

import (
	"io"

	"spcd/internal/engine"
	"spcd/internal/policy"
	"spcd/internal/runtimeobs"
)

// RuntimeCollector records host-side wall-clock spans — where the *host*
// spends time running a simulation (shard-worker simulate phases, barrier
// waits, merge passes, sweep-pool occupancy) — as opposed to a Probe's
// virtual-time view of the simulated machine (see internal/runtimeobs).
//
// Attaching a collector never changes simulation results: the
// instrumentation is strictly one-way (simulation code emits host-time
// stamps into the collector and never reads one back; the
// runtimeobs-isolation spcdlint rule enforces this), so runtime-observed
// runs stay byte-identical to unobserved ones. A nil collector disables
// runtime observability at zero cost.
type RuntimeCollector = runtimeobs.Collector

// NewRuntimeCollector creates a host-time collector whose stamps count
// from now. One collector can observe many runs (a whole sweep).
func NewRuntimeCollector() *RuntimeCollector { return runtimeobs.New() }

// RunWithRuntime is Run with host-side runtime observability: the
// collector records run-level wall-clock phases for the sequential engine,
// or per-worker per-epoch simulate / barrier-wait / merge spans for the
// epoch-sharded engine (shards >= 1). The returned Metrics are identical
// to an unobserved run's.
func RunWithRuntime(m *Machine, w Workload, policyName string, seed int64, shards int, rt *RuntimeCollector) (Metrics, error) {
	p, err := policy.Tuned(policyName, w, m)
	if err != nil {
		return Metrics{}, err
	}
	return engine.Run(engine.Config{Machine: m, Workload: w, Policy: p, Seed: seed,
		Shards: shards, Runtime: rt.Proc("run " + w.Name())})
}

// WriteRuntimeTrace exports the collector's spans as a Chrome trace with
// host-time lanes ("host: ..." process groups), loadable in
// chrome://tracing or Perfetto alongside — or merged with — the
// virtual-time trace.
func WriteRuntimeTrace(w io.Writer, rt *RuntimeCollector) error {
	return runtimeobs.WriteChromeTrace(w, rt)
}

// WriteRuntimeSummary exports the collector's derived diagnostics
// (barrier-stall fraction, load-imbalance ratio, merge share,
// critical-path attribution) as an indented JSON document.
func WriteRuntimeSummary(w io.Writer, rt *RuntimeCollector) error {
	return runtimeobs.WriteSummary(w, rt)
}

// WriteRuntimeArtifacts writes runtime_trace.json and runtime_summary.json
// under dir — the same artifact pair the tools' -runtimeobs flag produces.
func WriteRuntimeArtifacts(dir string, rt *RuntimeCollector) error {
	return runtimeobs.WriteArtifacts(dir, rt)
}
