package spcd_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"spcd"
)

// renderRuntimeLeg runs the CG experiment (os + spcd, two reps) on the
// given engine configuration and renders every run's metrics byte for byte.
// rt, when non-nil, attaches the host-time collector — whose presence is
// exactly what this file proves changes nothing.
func renderRuntimeLeg(t *testing.T, shards int, faults *spcd.FaultPlan, rt *spcd.RuntimeCollector) string {
	t.Helper()
	w, err := spcd.NPB("CG", 8, spcd.ClassTest)
	if err != nil {
		t.Fatal(err)
	}
	e := spcd.Experiment{
		Machine:  spcd.DefaultMachine(),
		Workload: w,
		Policies: []string{"os", "spcd"},
		Reps:     2,
		BaseSeed: 7,
		Shards:   shards,
		Faults:   faults,
		Runtime:  rt,
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, pol := range res.Policies() {
		for _, m := range res.ByPolicy[pol] {
			if m.CommMatrix != nil {
				if err := spcd.WriteMatrixCSV(&buf, m.CommMatrix); err != nil {
					t.Fatal(err)
				}
				m.CommMatrix = nil
			}
			fmt.Fprintf(&buf, "%s: %+v\n", pol, m)
		}
	}
	return buf.String()
}

// TestRuntimeObsByteIdentity is the one-way contract's acceptance gate:
// attaching a RuntimeCollector must leave simulation results byte-identical
// on the sequential engine, the epoch-sharded engine, and the sharded
// chaos (fault-injected) path. The spcdlint runtimeobs-isolation rule
// proves no host-time value can flow back statically; this proves it
// dynamically, metrics byte for byte.
func TestRuntimeObsByteIdentity(t *testing.T) {
	chaos := spcd.CanonicalFaultPlan(9)
	legs := []struct {
		name   string
		shards int
		faults *spcd.FaultPlan
	}{
		{"sequential", 0, nil},
		{"sharded4", 4, nil},
		{"sharded4-chaos", 4, &chaos},
	}
	for _, leg := range legs {
		t.Run(leg.name, func(t *testing.T) {
			base := renderRuntimeLeg(t, leg.shards, leg.faults, nil)
			rt := spcd.NewRuntimeCollector()
			got := renderRuntimeLeg(t, leg.shards, leg.faults, rt)
			if got != base {
				t.Errorf("metrics with RuntimeCollector attached differ from unobserved run")
			}
			// The observed leg must actually have observed something, or the
			// identity above proves nothing.
			var buf bytes.Buffer
			if err := spcd.WriteRuntimeSummary(&buf, rt); err != nil {
				t.Fatal(err)
			}
			var sum runtimeSummaryDoc
			if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
				t.Fatal(err)
			}
			if len(sum.Procs) == 0 {
				t.Fatal("runtime summary recorded no processes")
			}
		})
	}
}

// runtimeSummaryDoc mirrors the runtime_summary.json schema the tools'
// -runtimeobs flag writes (internal/runtimeobs.Summary).
type runtimeSummaryDoc struct {
	SchemaVersion int     `json:"schema_version"`
	WallSeconds   float64 `json:"wall_seconds"`
	Procs         []struct {
		Name   string `json:"name"`
		Kind   string `json:"kind"`
		Engine *struct {
			Mode                 string  `json:"mode"`
			Shards               int     `json:"shards"`
			Epochs               int     `json:"epochs"`
			SimulateSeconds      float64 `json:"simulate_seconds"`
			BarrierStallFraction float64 `json:"barrier_stall_fraction"`
			LoadImbalanceRatio   float64 `json:"load_imbalance_ratio"`
			MergeShare           float64 `json:"merge_share"`
			CriticalPath         *struct {
				EstimatedSpeedup float64 `json:"estimated_speedup"`
			} `json:"critical_path"`
		} `json:"engine"`
		Sweep *struct {
			Workers     int     `json:"workers"`
			Experiments int     `json:"experiments"`
			Occupancy   float64 `json:"occupancy"`
		} `json:"sweep"`
	} `json:"procs"`
}

// TestRuntimeSummaryDiagnostics runs one sharded simulation under the
// collector and checks the derived diagnostics are present and sane: a
// barrier-stall fraction in [0,1], a load-imbalance ratio >= 1, a merge
// share in [0,1], and a critical-path attribution with a finite speedup
// estimate.
func TestRuntimeSummaryDiagnostics(t *testing.T) {
	w, err := spcd.NPB("CG", 8, spcd.ClassTest)
	if err != nil {
		t.Fatal(err)
	}
	rt := spcd.NewRuntimeCollector()
	if _, err := spcd.RunWithRuntime(spcd.DefaultMachine(), w, "spcd", 1, 2, rt); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := spcd.WriteRuntimeSummary(&buf, rt); err != nil {
		t.Fatal(err)
	}
	var sum runtimeSummaryDoc
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatalf("summary does not parse: %v\n%s", err, buf.String())
	}
	found := false
	for _, p := range sum.Procs {
		if p.Engine == nil {
			continue
		}
		e := p.Engine
		if e.Mode != "epoch-sharded" {
			continue
		}
		found = true
		if e.Shards != 2 {
			t.Errorf("shards = %d, want 2", e.Shards)
		}
		if e.Epochs <= 0 || e.SimulateSeconds <= 0 {
			t.Errorf("no recorded work: epochs=%d simulate=%g", e.Epochs, e.SimulateSeconds)
		}
		if e.BarrierStallFraction < 0 || e.BarrierStallFraction > 1 {
			t.Errorf("barrier_stall_fraction = %g, want [0,1]", e.BarrierStallFraction)
		}
		if e.LoadImbalanceRatio < 1 || math.IsInf(e.LoadImbalanceRatio, 0) || math.IsNaN(e.LoadImbalanceRatio) {
			t.Errorf("load_imbalance_ratio = %g, want finite >= 1", e.LoadImbalanceRatio)
		}
		if e.MergeShare < 0 || e.MergeShare > 1 {
			t.Errorf("merge_share = %g, want [0,1]", e.MergeShare)
		}
		if e.CriticalPath == nil {
			t.Error("critical_path missing")
		} else if e.CriticalPath.EstimatedSpeedup <= 0 || math.IsInf(e.CriticalPath.EstimatedSpeedup, 0) {
			t.Errorf("estimated_speedup = %g, want finite > 0", e.CriticalPath.EstimatedSpeedup)
		}
	}
	if !found {
		t.Fatalf("no epoch-sharded engine process in summary:\n%s", buf.String())
	}
}

// chromeTraceDoc is the slice of the Chrome trace schema the shard-
// attribution test reads.
type chromeTraceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestShardedTraceShardAttribution checks the virtual-time trace records
// which shard worker produced each buffered engine event: every
// thread.done and stall.injected event must carry a "shard" arg within
// range, the attribution must span multiple workers (it is per-core, not a
// constant), and the whole trace must be byte-identical across repeated
// sharded runs.
func TestShardedTraceShardAttribution(t *testing.T) {
	const shards = 2
	plan := spcd.CanonicalFaultPlan(9)
	render := func() []byte {
		t.Helper()
		w, err := spcd.NPB("CG", 8, spcd.ClassTest)
		if err != nil {
			t.Fatal(err)
		}
		pr := spcd.NewProbe(spcd.ObsOptions{})
		e := spcd.Experiment{
			Machine:  spcd.DefaultMachine(),
			Workload: w,
			Policies: []string{"spcd"},
			Reps:     1,
			BaseSeed: 7,
			Shards:   shards,
			Observe:  func(string, int) *spcd.Probe { return pr },
		}.WithFaults(plan)
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := spcd.WriteChromeTrace(&buf, pr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	trace := render()
	var doc chromeTraceDoc
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatal(err)
	}
	seen := make(map[float64]int)
	var attributed int
	for _, ev := range doc.TraceEvents {
		if ev.Name != "thread.done" && ev.Name != "stall.injected" {
			continue
		}
		attributed++
		v, ok := ev.Args["shard"]
		if !ok {
			t.Fatalf("%s event has no shard arg: %+v", ev.Name, ev.Args)
		}
		shard, ok := v.(float64)
		if !ok || shard < 0 || shard >= shards {
			t.Fatalf("%s event shard = %v, want integer in [0,%d)", ev.Name, v, shards)
		}
		seen[shard]++
	}
	if attributed == 0 {
		t.Fatal("trace has no thread.done/stall.injected events to attribute")
	}
	if len(seen) < 2 {
		t.Errorf("all %d events attributed to one shard %v; expected work on both workers", attributed, seen)
	}
	if again := render(); !bytes.Equal(trace, again) {
		t.Error("sharded trace bytes differ between identical runs")
	}
}
