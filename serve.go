package spcd

import (
	"errors"
	"fmt"

	"spcd/internal/scenario"
	"spcd/internal/sweep"
)

// Scenario describes a long-running multi-tenant serving run: a deterministic
// stream of tenant arrivals, phase switches, departures and completions that
// the placement policy must adapt to online (see internal/scenario for the
// schedule semantics and the determinism contract).
type Scenario = scenario.Spec

// ScenarioTenant is one application in a scenario's workload mix.
type ScenarioTenant = scenario.Tenant

// ScenarioPhase is one stretch of a tenant's lifetime on a single kernel.
type ScenarioPhase = scenario.Phase

// ScenarioReport is the outcome of one scenario run: run-level adaptation
// totals plus per-tenant serving metrics (status, admission history, and the
// slowdown distribution the SLO analysis reads p99 from).
type ScenarioReport = scenario.Report

// TenantMetrics is one tenant's serving outcome within a ScenarioReport.
type TenantMetrics = scenario.TenantMetrics

// ScenarioPolicyNames lists the serving placement modes: "static" (placed at
// admission, never moved), "os" (admission placement plus load-balancer
// churn), and the online detection policies "spcd", "tlb", "hwc".
var ScenarioPolicyNames = []string{"static", "os", "spcd", "tlb", "hwc"}

// Serve runs one scenario to completion and returns its report. The report
// is a pure function of the spec: byte-identical for the same spec at every
// engine shard count and regardless of host scheduling.
func Serve(spec Scenario) (*ScenarioReport, error) {
	return scenario.Run(spec)
}

// DefaultScenario builds the canonical churn schedule over nTenants tenants:
// staggered arrivals, a phase switch for every tenant after the first, and a
// departure for every third tenant. With nTenants >= 3 one run exercises
// arrival, phase switch and departure.
func DefaultScenario(nTenants int, class Class, seed int64) Scenario {
	return scenario.DefaultSpec(nTenants, class, seed)
}

// ScenarioResults holds repeated scenario runs grouped by policy, the
// serving-mode analogue of Results.
type ScenarioResults struct {
	ByPolicy map[string][]*ScenarioReport
	order    []string
}

// Policies returns the policy names in execution order.
func (r *ScenarioResults) Policies() []string {
	return append([]string(nil), r.order...)
}

// MeanP99 averages the per-run MeanP99 slowdown over a policy's reps — the
// SLO headline for that policy. It errors for an unknown policy.
func (r *ScenarioResults) MeanP99(policyName string) (float64, error) {
	reps, ok := r.ByPolicy[policyName]
	if !ok {
		return 0, fmt.Errorf("spcd: no scenario runs for policy %q", policyName)
	}
	sum := 0.0
	for _, rep := range reps {
		sum += rep.MeanP99()
	}
	return sum / float64(len(reps)), nil
}

// MeanCrossSocketC2C averages cross-socket cache-to-cache transactions over
// a policy's reps — the paper's mapping-quality metric on the serving axis.
func (r *ScenarioResults) MeanCrossSocketC2C(policyName string) (float64, error) {
	reps, ok := r.ByPolicy[policyName]
	if !ok {
		return 0, fmt.Errorf("spcd: no scenario runs for policy %q", policyName)
	}
	sum := 0.0
	for _, rep := range reps {
		sum += float64(rep.C2CCrossSocket)
	}
	return sum / float64(len(reps)), nil
}

// Scenario runs the given serving schedule under the experiment's policies ×
// reps on a bounded worker pool, mirroring Run's methodology on the serving
// axis: rep r uses master seed DeriveSeed(BaseSeed, "scenario/r<r>") under
// every policy — the key excludes the policy name, so policies under
// comparison serve identical tenant streams. The experiment's Workload field
// is ignored (the spec carries the workload mix); Machine, when set, fills a
// spec without one. Reports are byte-identical at every Parallelism and
// Shards setting.
func (e Experiment) Scenario(spec Scenario) (*ScenarioResults, error) {
	if len(spec.Tenants) == 0 {
		return nil, errors.New("spcd: scenario experiment needs tenants")
	}
	if spec.Machine == nil {
		spec.Machine = e.Machine
	}
	policies := e.Policies
	if len(policies) == 0 {
		policies = ScenarioPolicyNames
	}
	reps := e.Reps
	if reps <= 0 {
		reps = 3
	}
	specs := make([]Scenario, 0, len(policies)*reps)
	for _, name := range policies {
		for r := 0; r < reps; r++ {
			s := spec
			s.Policy = name
			s.MasterSeed = sweep.DeriveSeed(e.BaseSeed, fmt.Sprintf("scenario/r%d", r))
			if s.Shards == 0 {
				s.Shards = e.Shards
			}
			if e.Faults != nil && s.Faults == nil {
				plan := *e.Faults
				s.Faults = &plan
			}
			specs = append(specs, s)
		}
	}
	reports, errs := scenario.RunJobs(specs, e.Parallelism)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("spcd: scenario %s rep %d: %w",
				specs[i].Policy, i%reps, err)
		}
	}
	res := &ScenarioResults{
		ByPolicy: make(map[string][]*ScenarioReport, len(policies)),
		order:    append([]string(nil), policies...),
	}
	i := 0
	for _, name := range policies {
		res.ByPolicy[name] = reports[i : i+reps]
		i += reps
	}
	return res, nil
}
