package spcd_test

import (
	"testing"

	"spcd"
)

// TestPaperShapeHeterogeneousVsHomogeneous checks the paper's headline
// result at tiny scale: communication-aware placement (the oracle) clearly
// beats the communication-blind OS baseline on a heterogeneous kernel, and
// does essentially nothing on a homogeneous one (§V-D).
func TestPaperShapeHeterogeneousVsHomogeneous(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run shape test")
	}
	mach := spcd.DefaultMachine()

	norm := func(kernel string) float64 {
		t.Helper()
		w, err := spcd.NPB(kernel, 32, spcd.ClassTiny)
		if err != nil {
			t.Fatal(err)
		}
		base, err := spcd.Run(mach, w, "os", 1)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := spcd.Run(mach, w, "oracle", 1)
		if err != nil {
			t.Fatal(err)
		}
		return oracle.ExecSeconds / base.ExecSeconds
	}

	sp := norm("SP")
	if sp > 0.95 {
		t.Errorf("SP oracle/os = %.3f, want clear gain (< 0.95)", sp)
	}
	ep := norm("EP")
	if ep < 0.93 || ep > 1.07 {
		t.Errorf("EP oracle/os = %.3f, want ~1 (nothing to optimize)", ep)
	}
}

// TestPaperShapeCacheEffects checks the secondary claims: the oracle
// reduces cache-to-cache transactions and invalidation misses on a
// heterogeneous kernel — the causal chain of §II-A.
func TestPaperShapeCacheEffects(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run shape test")
	}
	mach := spcd.DefaultMachine()
	w, err := spcd.NPB("BT", 32, spcd.ClassTiny)
	if err != nil {
		t.Fatal(err)
	}
	base, err := spcd.Run(mach, w, "os", 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := spcd.Run(mach, w, "oracle", 1)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Cache.C2CTotal() >= base.Cache.C2CTotal() {
		t.Errorf("oracle c2c %d >= os %d", oracle.Cache.C2CTotal(), base.Cache.C2CTotal())
	}
	if oracle.Cache.InvalidationMisses >= base.Cache.InvalidationMisses {
		t.Errorf("oracle invalidation misses %d >= os %d",
			oracle.Cache.InvalidationMisses, base.Cache.InvalidationMisses)
	}
	if oracle.Energy.ProcessorJoules >= base.Energy.ProcessorJoules {
		t.Errorf("oracle proc energy %.3f >= os %.3f",
			oracle.Energy.ProcessorJoules, base.Energy.ProcessorJoules)
	}
}

// TestPaperShapeSPCDBetweenOSAndOracle checks SPCD's position on a strongly
// heterogeneous kernel at tiny scale: its final placement (and cache
// traffic) must improve on the OS baseline even though overheads at this
// compressed scale can absorb part of the runtime gain (the quantitative
// regime is ClassSmall; see EXPERIMENTS.md).
func TestPaperShapeSPCDBetweenOSAndOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run shape test")
	}
	mach := spcd.DefaultMachine()
	w, err := spcd.NPB("UA", 32, spcd.ClassTiny)
	if err != nil {
		t.Fatal(err)
	}
	base, err := spcd.Run(mach, w, "os", 2)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spcd.Run(mach, w, "spcd", 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Migrations == 0 {
		t.Error("SPCD should migrate on UA")
	}
	// At tiny scale we accept up to a small slowdown from the compressed
	// overhead ratios, but never a blow-up.
	if sp.ExecSeconds > base.ExecSeconds*1.15 {
		t.Errorf("SPCD exec %.6f more than 15%% over OS %.6f", sp.ExecSeconds, base.ExecSeconds)
	}
	if sp.DetectionOverheadPct+sp.MappingOverheadPct > 20 {
		t.Errorf("overheads %.1f%%+%.1f%% out of range",
			sp.DetectionOverheadPct, sp.MappingOverheadPct)
	}
}
