package spcd_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"spcd"
)

// renderShardedSweep runs the full kernel × policy grid on the epoch-sharded
// engine with the given intra-run worker count and renders every
// experiment's metrics — including the detected communication matrix, byte
// for byte — into one string.
func renderShardedSweep(t *testing.T, shards int, cls spcd.Class, faults *spcd.FaultPlan) string {
	t.Helper()
	s := spcd.Sweep{
		Machine:    spcd.DefaultMachine(),
		Class:      cls,
		Threads:    8,
		Reps:       1,
		MasterSeed: 12345,
		Shards:     shards,
		Faults:     faults,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, kernel := range res.Kernels {
		r := res.ByKernel[kernel]
		for _, pol := range r.Policies() {
			for _, m := range r.ByPolicy[pol] {
				fmt.Fprintf(&buf, "%s/%s:\n", kernel, pol)
				if m.CommMatrix != nil {
					if err := spcd.WriteMatrixCSV(&buf, m.CommMatrix); err != nil {
						t.Fatal(err)
					}
					m.CommMatrix = nil
				}
				fmt.Fprintf(&buf, "%+v\n", m)
			}
		}
	}
	return buf.String()
}

// TestEngineShardingByteIdentical is the sharded engine's acceptance gate:
// the complete kernel × policy grid produces byte-identical metrics (and
// detected communication matrices) at every intra-run worker count. Unlike
// sweep-level parallelism this exercises the epoch engine itself — shard
// workers share one simulation, so any frozen-state leak or merge-order slip
// shows up as a byte diff here. SWEEP_CLASS selects the workload class —
// "test" by default so the race detector stays affordable; CI runs the full
// SWEEP_CLASS=small grid without -race.
func TestEngineShardingByteIdentical(t *testing.T) {
	clsName := os.Getenv("SWEEP_CLASS")
	if clsName == "" {
		clsName = "test"
	}
	cls, err := spcd.ClassByName(clsName)
	if err != nil {
		t.Fatalf("SWEEP_CLASS=%q: %v", clsName, err)
	}
	base := renderShardedSweep(t, 1, cls, nil)
	for _, shards := range []int{2, 4, 8} {
		if got := renderShardedSweep(t, shards, cls, nil); got != base {
			t.Errorf("class %s grid at shards=%d differs from shards=1", clsName, shards)
		}
	}
}

// TestEngineShardingByteIdenticalWithFaults is the chaos leg of the gate:
// under the canonical mid-intensity fault plan, per-thread stall streams and
// barrier-ordered fault resolution must keep the grid worker-count-invariant
// too. One kernel suffices — the per-site fault machinery is workload-
// independent — so this stays cheap enough to run unconditionally.
func TestEngineShardingByteIdenticalWithFaults(t *testing.T) {
	plan := spcd.CanonicalFaultPlan(9)
	render := func(shards int) string {
		t.Helper()
		w, err := spcd.NPB("CG", 8, spcd.ClassTest)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, pol := range []string{"os", "spcd"} {
			e := spcd.Experiment{
				Machine:  spcd.DefaultMachine(),
				Workload: w,
				Policies: []string{pol},
				Reps:     2,
				BaseSeed: 7,
				Shards:   shards,
			}.WithFaults(plan)
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range res.ByPolicy[pol] {
				if m.CommMatrix != nil {
					if err := spcd.WriteMatrixCSV(&buf, m.CommMatrix); err != nil {
						t.Fatal(err)
					}
					m.CommMatrix = nil
				}
				fmt.Fprintf(&buf, "%s: %+v\n", pol, m)
			}
		}
		return buf.String()
	}
	base := render(1)
	for _, shards := range []int{4} {
		if got := render(shards); got != base {
			t.Errorf("faulted run at shards=%d differs from shards=1", shards)
		}
	}
}

// TestGoldenShardedMetrics pins the epoch-sharded engine's results the same
// way TestGoldenMetrics pins the sequential engine's: full CG metrics for
// one fixed seed × {os, spcd} at shards=2, recorded in testdata. The epoch
// engine's results intentionally differ from the sequential engine's (epoch-
// relaxed coherence; DESIGN.md §13) but must never drift silently between
// PRs. Regenerate with `go test -run TestGoldenShardedMetrics -update` ONLY
// when a sharded-semantics change is intended, and say so in the commit.
func TestGoldenShardedMetrics(t *testing.T) {
	mach := spcd.DefaultMachine()
	for _, policy := range []string{"os", "spcd"} {
		t.Run(policy, func(t *testing.T) {
			w, err := spcd.NPB(goldenKernel, goldenThreads, spcd.ClassTest)
			if err != nil {
				t.Fatal(err)
			}
			m, err := spcd.RunSharded(mach, w, policy, goldenSeed, 2)
			if err != nil {
				t.Fatal(err)
			}
			got := renderMetrics(t, m)
			path := filepath.Join("testdata",
				fmt.Sprintf("golden_sharded_%s_%s.txt", goldenKernel, policy))
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update on a trusted tree): %v", err)
			}
			if got != string(want) {
				t.Errorf("sharded metrics diverged from golden %s\n--- got ---\n%s--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
