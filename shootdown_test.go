package spcd_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"spcd"
)

// renderShootdownMetrics is renderMetrics plus the shootdown counters. The
// extra line lives here — not in renderMetrics — so the mode-none golden
// files keep their exact historical bytes.
func renderShootdownMetrics(t *testing.T, m spcd.Metrics) string {
	t.Helper()
	return renderMetrics(t, m) + fmt.Sprintf("Shootdown: %+v\n", m.Shootdown)
}

// TestGoldenShootdownMetrics pins the translation-coherence cost model the
// same way TestGoldenMetrics pins the seed behavior: full CG metrics for one
// fixed seed × {os, spcd} × {ipi, hatric}, recorded in testdata. A change to
// the shootdown formulas, the sharer-set derivation, or the charging order
// fails this loudly. Regenerate with
// `go test -run TestGoldenShootdownMetrics -update` ONLY when a cost-model
// change is intended, and say so in the commit.
func TestGoldenShootdownMetrics(t *testing.T) {
	for _, mode := range []string{"ipi", "hatric"} {
		for _, policy := range []string{"os", "spcd"} {
			t.Run(mode+"/"+policy, func(t *testing.T) {
				mach := spcd.DefaultMachine()
				if err := spcd.ConfigureShootdown(mach, mode); err != nil {
					t.Fatal(err)
				}
				w, err := spcd.NPB(goldenKernel, goldenThreads, spcd.ClassTest)
				if err != nil {
					t.Fatal(err)
				}
				m, err := spcd.Run(mach, w, policy, goldenSeed)
				if err != nil {
					t.Fatal(err)
				}
				if policy == "spcd" && m.Shootdown.Events == 0 {
					t.Error("spcd run charged no shootdowns; the golden would pin a dead cost model")
				}
				got := renderShootdownMetrics(t, m)
				path := filepath.Join("testdata",
					fmt.Sprintf("golden_%s_%s_%s.txt", goldenKernel, policy, mode))
				if *updateGolden {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("rewrote %s", path)
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update on a trusted tree): %v", err)
				}
				if got != string(want) {
					t.Errorf("metrics diverged from golden %s\n--- got ---\n%s--- want ---\n%s",
						path, got, want)
				}
			})
		}
	}
}

// TestShootdownShardedByteIdentity: with the cost model armed, the epoch-
// sharded engine must still be worker-count-invariant — shootdown charging
// happens canonically inside the single-threaded policy tick, so shard
// count cannot leak into the charged cycles.
func TestShootdownShardedByteIdentity(t *testing.T) {
	for _, mode := range []string{"ipi", "hatric"} {
		t.Run(mode, func(t *testing.T) {
			render := func(shards int) string {
				t.Helper()
				mach := spcd.DefaultMachine()
				if err := spcd.ConfigureShootdown(mach, mode); err != nil {
					t.Fatal(err)
				}
				var out string
				for _, policy := range []string{"os", "spcd"} {
					w, err := spcd.NPB(goldenKernel, goldenThreads, spcd.ClassTest)
					if err != nil {
						t.Fatal(err)
					}
					m, err := spcd.RunSharded(mach, w, policy, goldenSeed, shards)
					if err != nil {
						t.Fatal(err)
					}
					out += renderShootdownMetrics(t, m)
				}
				return out
			}
			base := render(1)
			if got := render(4); got != base {
				t.Errorf("%s metrics at shards=4 differ from shards=1", mode)
			}
		})
	}
}
