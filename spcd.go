// Package spcd is the public API of the SPCD reproduction: Shared Pages
// Communication Detection and communication-based thread mapping (Diener,
// Cruz, Navaux — "Communication-Based Mapping Using Shared Pages", IPPS
// 2013), implemented on a simulated NUMA machine.
//
// The package wires together the internal substrates — machine topology,
// MMU, coherent cache hierarchy, the SPCD detector, Edmonds matching,
// scheduling policies, synthetic NPB workloads and the energy model — behind
// a small surface:
//
//	mach := spcd.DefaultMachine()
//	w, _ := spcd.NPB("SP", 32, spcd.ClassTiny)
//	res, _ := spcd.Experiment{
//	        Machine:  mach,
//	        Workload: w,
//	        Policies: []string{"os", "spcd"},
//	        Reps:     3,
//	}.Run()
//	fmt.Println(res.NormalizedMean("spcd", spcd.MetricTime, "os"))
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package spcd

import (
	"fmt"
	"io"

	"spcd/internal/commmatrix"
	"spcd/internal/engine"
	"spcd/internal/heatmap"
	"spcd/internal/mapping"
	"spcd/internal/policy"
	"spcd/internal/topology"
	"spcd/internal/trace"
	"spcd/internal/workloads"
)

// Machine describes the simulated hardware platform (topology, caches,
// latencies). See DefaultMachine and NewMachine.
type Machine = topology.Machine

// DefaultMachine returns the paper's evaluation platform (Table I): two
// Intel Xeon E5-2650 sockets, 8 cores each, 2-way SMT, 2.0 GHz.
func DefaultMachine() *Machine { return topology.DefaultXeon() }

// NewMachine builds a machine with a custom shape and default cache
// geometry/latencies.
func NewMachine(sockets, coresPerSocket, threadsPerCore int) (*Machine, error) {
	return topology.New(sockets, coresPerSocket, threadsPerCore)
}

// ConfigureShootdown arms the machine's translation-coherence cost model
// from its CLI spelling: "none" (remaps are free — the default), "ipi"
// (software IPI shootdowns), or "hatric" (HATRIC-style hardware translation
// coherence). The cost parameters come from the machine's ShootdownCosts,
// which DefaultMachine pre-populates.
func ConfigureShootdown(m *Machine, mode string) error {
	sd, err := topology.ParseShootdownMode(mode)
	if err != nil {
		return err
	}
	m.Shootdown = sd
	return m.Validate()
}

// Workload is a parallel application the simulator can execute. Implement
// it (and optionally workloads.Initializer) to plug custom applications
// into the simulator; see examples/custom_workload.
type Workload = workloads.Workload

// WorkloadRun generates the deterministic access streams of one workload
// execution.
type WorkloadRun = workloads.Run

// Access is one memory reference issued by a workload thread.
type Access = workloads.Access

// Class scales a workload's footprint and duration.
type Class = workloads.Class

// Workload classes, from unit-test scale to NPB-class-A scale.
var (
	ClassTest  = workloads.ClassTest
	ClassTiny  = workloads.ClassTiny
	ClassSmall = workloads.ClassSmall
	ClassA     = workloads.ClassA
)

// ClassByName resolves a workload class by name: "test", "tiny", "small"
// or "A".
func ClassByName(name string) (Class, error) {
	switch name {
	case "test":
		return ClassTest, nil
	case "tiny":
		return ClassTiny, nil
	case "small":
		return ClassSmall, nil
	case "A", "a":
		return ClassA, nil
	}
	return Class{}, fmt.Errorf("spcd: unknown class %q (want test, tiny, small, A)", name)
}

// NPBNames lists the ten NAS kernels in the paper's order.
var NPBNames = workloads.NPBNames

// HeterogeneousKernels marks the kernels the paper classifies as having
// heterogeneous communication (Table II).
var HeterogeneousKernels = workloads.HeterogeneousKernels

// NPB constructs the named synthetic NAS kernel (BT, CG, DC, EP, FT, IS,
// LU, MG, SP, UA).
func NPB(name string, threads int, class Class) (Workload, error) {
	return workloads.NewNPB(name, threads, class)
}

// ParsecNames lists the PARSEC/SPLASH-style extension kernels
// (streamcluster, dedup, ferret, fluidanimate, canneal, x264).
var ParsecNames = workloads.ParsecNames

// Parsec constructs a named extension kernel from the PARSEC/SPLASH-style
// suite, whose communication shapes (notably multi-thread pipeline stages)
// differ from the NAS kernels'.
func Parsec(name string, threads int, class Class) (Workload, error) {
	return workloads.NewParsec(name, threads, class)
}

// ProducerConsumer constructs the two-phase verification benchmark of §V-B.
func ProducerConsumer(threads int, class Class, phases int, phaseLength uint64) (Workload, error) {
	return workloads.NewProducerConsumer(threads, class, phases, phaseLength)
}

// Policy decides thread placement during a run.
type Policy = engine.Policy

// PolicyNames lists the four evaluated policies: "os", "random", "oracle",
// "spcd".
var PolicyNames = policy.Names

// NewPolicy constructs a policy by name with periods scaled to the given
// workload (see internal/policy for the scaling rationale).
func NewPolicy(name string, w Workload, m *Machine) (Policy, error) {
	return policy.Tuned(name, w, m)
}

// Metrics is the outcome of one simulated run.
type Metrics = engine.Metrics

// Run executes workload w on machine m under the named policy and returns
// the measured metrics.
func Run(m *Machine, w Workload, policyName string, seed int64) (Metrics, error) {
	p, err := policy.Tuned(policyName, w, m)
	if err != nil {
		return Metrics{}, err
	}
	return engine.Run(engine.Config{Machine: m, Workload: w, Policy: p, Seed: seed})
}

// RunWithPolicy executes workload w under a caller-constructed policy,
// allowing custom policy options.
func RunWithPolicy(m *Machine, w Workload, p Policy, seed int64) (Metrics, error) {
	return engine.Run(engine.Config{Machine: m, Workload: w, Policy: p, Seed: seed})
}

// RunSharded executes workload w on the epoch-sharded engine with the given
// intra-run worker count (shards >= 1; values above the machine's core count
// are clamped). Sharded results are byte-identical for every worker count —
// shards only changes wall-clock time — but they intentionally differ from
// the sequential Run: cross-core cache coherence and page-fault effects land
// at epoch boundaries instead of instantly (see DESIGN.md §13). shards <= 0
// falls back to the sequential engine, making RunSharded(m, w, p, seed, 0)
// identical to Run.
func RunSharded(m *Machine, w Workload, policyName string, seed int64, shards int) (Metrics, error) {
	p, err := policy.Tuned(policyName, w, m)
	if err != nil {
		return Metrics{}, err
	}
	return engine.Run(engine.Config{Machine: m, Workload: w, Policy: p, Seed: seed, Shards: shards})
}

// CommMatrix is a symmetric thread-communication matrix.
type CommMatrix = commmatrix.Matrix

// TraceCommunication replays a run's full memory trace offline and returns
// the ground-truth communication matrix (the paper's oracle analysis).
func TraceCommunication(w Workload, m *Machine, seed int64) *CommMatrix {
	return trace.CommunicationMatrix(w, seed, m.PageSize)
}

// DetectCommunication executes the workload once under the SPCD policy and
// returns the communication matrix the mechanism detected online.
func DetectCommunication(w Workload, m *Machine, seed int64) (*CommMatrix, error) {
	metrics, err := Run(m, w, "spcd", seed)
	if err != nil {
		return nil, err
	}
	if metrics.CommMatrix == nil {
		return nil, fmt.Errorf("spcd: no communication matrix produced")
	}
	return metrics.CommMatrix, nil
}

// ComputeMapping derives a thread-to-context placement from a communication
// matrix with the paper's hierarchical Edmonds algorithm (§IV-B).
func ComputeMapping(mtx *CommMatrix, m *Machine) ([]int, error) {
	return mapping.Compute(mtx, m, nil)
}

// MappingCost evaluates a placement's communication cost under a matrix
// (lower is better); it is the objective the mapping minimizes.
func MappingCost(mtx *CommMatrix, m *Machine, affinity []int) float64 {
	return mapping.Cost(mtx, m, affinity)
}

// RenderHeatmap renders a communication matrix as an ASCII heatmap in the
// style of the paper's Figures 6 and 7.
func RenderHeatmap(mtx *CommMatrix) string { return heatmap.ASCII(mtx) }

// RenderHeatmaps renders several labeled matrices side by side.
func RenderHeatmaps(labels []string, ms []*CommMatrix) string {
	return heatmap.SideBySide(labels, ms)
}

// WriteHeatmapPGM writes a matrix as a binary PGM image (scale pixels per
// cell).
func WriteHeatmapPGM(w io.Writer, mtx *CommMatrix, scale int) error {
	return heatmap.WritePGM(w, mtx, scale)
}

// WriteHeatmapSVG writes a matrix as a publication-style SVG figure with
// axis labels, in the style of the paper's Figures 6/7.
func WriteHeatmapSVG(w io.Writer, mtx *CommMatrix, title string) error {
	return heatmap.WriteSVG(w, mtx, heatmap.SVGOptions{Title: title})
}

// WriteMatrixCSV serializes a communication matrix as CSV rows;
// ReadMatrixCSV parses it back. Use these to archive detected patterns or
// move them between tools.
func WriteMatrixCSV(w io.Writer, mtx *CommMatrix) error { return mtx.WriteCSV(w) }

// ReadMatrixCSV parses a matrix written by WriteMatrixCSV.
func ReadMatrixCSV(r io.Reader) (*CommMatrix, error) { return commmatrix.ReadCSV(r) }
