package spcd_test

import (
	"bytes"
	"strings"
	"testing"

	"spcd"
)

func TestDefaultMachineIsTableI(t *testing.T) {
	m := spcd.DefaultMachine()
	if m.NumContexts() != 32 || m.Sockets != 2 {
		t.Errorf("default machine = %v", m)
	}
}

func TestNewMachine(t *testing.T) {
	m, err := spcd.NewMachine(1, 4, 2)
	if err != nil || m.NumContexts() != 8 {
		t.Errorf("NewMachine = %v, %v", m, err)
	}
	if _, err := spcd.NewMachine(0, 1, 1); err == nil {
		t.Error("invalid shape should error")
	}
}

func TestNPBConstructors(t *testing.T) {
	for _, name := range spcd.NPBNames {
		w, err := spcd.NPB(name, 8, spcd.ClassTest)
		if err != nil || w.Name() != name {
			t.Errorf("NPB(%s) = %v, %v", name, w, err)
		}
	}
	if _, err := spcd.NPB("ZZ", 8, spcd.ClassTest); err == nil {
		t.Error("unknown kernel should error")
	}
}

func TestRunAllPolicies(t *testing.T) {
	mach := spcd.DefaultMachine()
	w, _ := spcd.NPB("CG", 8, spcd.ClassTest)
	for _, p := range spcd.PolicyNames {
		m, err := spcd.Run(mach, w, p, 1)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if m.ExecSeconds <= 0 {
			t.Errorf("%s: no execution time", p)
		}
		if m.Policy != p {
			t.Errorf("policy name = %q, want %q", m.Policy, p)
		}
	}
	if _, err := spcd.Run(mach, w, "bogus", 1); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestTraceAndMapping(t *testing.T) {
	mach := spcd.DefaultMachine()
	w, _ := spcd.ProducerConsumer(8, spcd.ClassTest, 1, 2000)
	mtx := spcd.TraceCommunication(w, mach, 1)
	if mtx.Total() == 0 {
		t.Fatal("no communication traced")
	}
	aff, err := spcd.ComputeMapping(mtx, mach)
	if err != nil {
		t.Fatal(err)
	}
	if len(aff) != 8 {
		t.Fatalf("affinity = %v", aff)
	}
	// Pairs (2k, 2k+1) must be SMT-colocated.
	for i := 0; i < 8; i += 2 {
		if mach.CoreOf(aff[i]) != mach.CoreOf(aff[i+1]) {
			t.Errorf("pair (%d,%d) not colocated", i, i+1)
		}
	}
	// Cost of the computed mapping beats an identity scatter.
	id := []int{0, 16, 2, 18, 4, 20, 6, 22}
	if spcd.MappingCost(mtx, mach, aff) >= spcd.MappingCost(mtx, mach, id) {
		t.Error("computed mapping should beat a split placement")
	}
}

func TestDetectCommunication(t *testing.T) {
	mach := spcd.DefaultMachine()
	w, _ := spcd.NPB("SP", 32, spcd.ClassTiny)
	det, err := spcd.DetectCommunication(w, mach, 1)
	if err != nil {
		t.Fatal(err)
	}
	if det.Total() == 0 {
		t.Fatal("nothing detected")
	}
	truth := spcd.TraceCommunication(w, mach, 1)
	if sim := det.Similarity(truth); sim < 0.2 {
		t.Errorf("similarity = %.3f, want >= 0.2", sim)
	}
}

func TestHeatmapRendering(t *testing.T) {
	mach := spcd.DefaultMachine()
	w, _ := spcd.ProducerConsumer(8, spcd.ClassTest, 1, 1000)
	mtx := spcd.TraceCommunication(w, mach, 1)
	ascii := spcd.RenderHeatmap(mtx)
	if !strings.Contains(ascii, "@") {
		t.Error("heatmap should contain dark cells")
	}
	multi := spcd.RenderHeatmaps([]string{"a", "b"}, []*spcd.CommMatrix{mtx, mtx})
	if !strings.Contains(multi, "a") || !strings.Contains(multi, "b") {
		t.Error("labels missing from side-by-side rendering")
	}
	var buf bytes.Buffer
	if err := spcd.WriteHeatmapPGM(&buf, mtx, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P5\n") {
		t.Error("PGM header missing")
	}
}

func TestExperimentFlow(t *testing.T) {
	mach := spcd.DefaultMachine()
	w, _ := spcd.NPB("CG", 8, spcd.ClassTest)
	res, err := spcd.Experiment{
		Machine:  mach,
		Workload: w,
		Policies: []string{"os", "oracle"},
		Reps:     2,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Policies(); len(got) != 2 || got[0] != "os" {
		t.Errorf("Policies = %v", got)
	}
	vals, err := res.Values("os", spcd.MetricTime)
	if err != nil || len(vals) != 2 {
		t.Fatalf("Values = %v, %v", vals, err)
	}
	sum, err := res.Summary("oracle", spcd.MetricTime)
	if err != nil || sum.N != 2 || sum.Mean <= 0 {
		t.Fatalf("Summary = %+v, %v", sum, err)
	}
	norm, err := res.NormalizedMean("oracle", spcd.MetricTime, "os")
	if err != nil || norm <= 0 {
		t.Fatalf("NormalizedMean = %g, %v", norm, err)
	}
	pct, err := res.PercentChange("oracle", spcd.MetricTime, "os")
	if err != nil {
		t.Fatal(err)
	}
	if pct < -100 || pct > 100 {
		t.Errorf("PercentChange = %g out of plausible range", pct)
	}
	if _, err := res.Values("nope", spcd.MetricTime); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := res.Values("os", spcd.Metric("zz")); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestExperimentParallelMatchesSequential(t *testing.T) {
	mach := spcd.DefaultMachine()
	w, _ := spcd.NPB("BT", 8, spcd.ClassTest)
	seq, err := spcd.Experiment{
		Machine: mach, Workload: w, Policies: []string{"os", "oracle"},
		Reps: 2, Parallelism: 1,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	par, err := spcd.Experiment{
		Machine: mach, Workload: w, Policies: []string{"os", "oracle"},
		Reps: 2, Parallelism: 4,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"os", "oracle"} {
		a, _ := seq.Values(p, spcd.MetricTime)
		b, _ := par.Values(p, spcd.MetricTime)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s rep %d: sequential %g != parallel %g", p, i, a[i], b[i])
			}
		}
	}
}

func TestExperimentValidation(t *testing.T) {
	if _, err := (spcd.Experiment{}).Run(); err == nil {
		t.Error("empty experiment should error")
	}
}

func TestMetricValueCoversAll(t *testing.T) {
	mach := spcd.DefaultMachine()
	w, _ := spcd.NPB("CG", 4, spcd.ClassTest)
	m, err := spcd.Run(mach, w, "os", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range spcd.AllMetrics {
		if _, err := spcd.MetricValue(m, metric); err != nil {
			t.Errorf("MetricValue(%s): %v", metric, err)
		}
	}
}

func TestClassByName(t *testing.T) {
	for _, name := range []string{"test", "tiny", "small", "A", "a"} {
		cls, err := spcd.ClassByName(name)
		if err != nil || cls.Accesses == 0 {
			t.Errorf("ClassByName(%s) = %+v, %v", name, cls, err)
		}
	}
	if _, err := spcd.ClassByName("huge"); err == nil {
		t.Error("unknown class should error")
	}
}

func TestParsecFacade(t *testing.T) {
	for _, name := range spcd.ParsecNames {
		w, err := spcd.Parsec(name, 8, spcd.ClassTest)
		if err != nil || w.Name() != name {
			t.Errorf("Parsec(%s) = %v, %v", name, w, err)
		}
	}
	if _, err := spcd.Parsec("zz", 8, spcd.ClassTest); err == nil {
		t.Error("unknown parsec kernel should error")
	}
	// A pipeline kernel runs end to end through the facade.
	w, _ := spcd.Parsec("dedup", 8, spcd.ClassTest)
	m, err := spcd.Run(spcd.DefaultMachine(), w, "oracle", 1)
	if err != nil || m.ExecSeconds <= 0 {
		t.Fatalf("dedup run = %+v, %v", m, err)
	}
}

func TestMatrixCSVAndSVGFacade(t *testing.T) {
	mach := spcd.DefaultMachine()
	w, _ := spcd.ProducerConsumer(8, spcd.ClassTest, 1, 1000)
	mtx := spcd.TraceCommunication(w, mach, 1)

	var csv bytes.Buffer
	if err := spcd.WriteMatrixCSV(&csv, mtx); err != nil {
		t.Fatal(err)
	}
	back, err := spcd.ReadMatrixCSV(&csv)
	if err != nil {
		t.Fatal(err)
	}
	if back.Total() != mtx.Total() {
		t.Errorf("CSV round trip: %g != %g", back.Total(), mtx.Total())
	}

	var svg bytes.Buffer
	if err := spcd.WriteHeatmapSVG(&svg, mtx, "pc"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg.String(), "<svg") {
		t.Error("SVG output malformed")
	}
}

func TestComparatorPoliciesViaFacade(t *testing.T) {
	mach := spcd.DefaultMachine()
	w, _ := spcd.NPB("CG", 8, spcd.ClassTest)
	for _, name := range []string{"tlb", "hwc"} {
		p, err := spcd.NewPolicy(name, w, mach)
		if err != nil {
			t.Fatalf("NewPolicy(%s): %v", name, err)
		}
		m, err := spcd.RunWithPolicy(mach, w, p, 1)
		if err != nil || m.Policy != name {
			t.Fatalf("%s run = %+v, %v", name, m, err)
		}
	}
}

func TestRunWithCustomPolicy(t *testing.T) {
	mach := spcd.DefaultMachine()
	w, _ := spcd.NPB("CG", 8, spcd.ClassTest)
	p, err := spcd.NewPolicy("spcd", w, mach)
	if err != nil {
		t.Fatal(err)
	}
	m, err := spcd.RunWithPolicy(mach, w, p, 1)
	if err != nil || m.Policy != "spcd" {
		t.Fatalf("RunWithPolicy = %+v, %v", m, err)
	}
}
