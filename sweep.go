package spcd

import (
	"errors"
	"fmt"

	"spcd/internal/obs"
	"spcd/internal/sweep"
)

// Sweep runs an evaluation grid — kernels × policies × reps at one class —
// on the deterministic parallel sweep runner (internal/sweep). This is the
// shape of every figure in the paper: cmd/npbsuite is a Sweep plus report
// tables.
//
// Determinism contract: the results (and any CSV rendered from them) are
// byte-identical for a given MasterSeed regardless of Parallelism and of
// the order in which experiments happen to finish. Each experiment's seed
// is DeriveSeed(MasterSeed, seed key); the seed key excludes the policy
// name so policies under comparison execute identical workload streams
// (the paper's §V-A methodology).
type Sweep struct {
	Machine *Machine

	// Suite selects the workload family: "nas" (default) or "parsec".
	Suite string
	// Kernels defaults to every kernel of the suite (NPBNames for nas).
	Kernels []string
	// Class defaults to ClassSmall.
	Class Class
	// Threads defaults to 32, the paper's thread count.
	Threads int
	// Policies defaults to PolicyNames.
	Policies []string
	// Reps defaults to 3 (the paper uses 10).
	Reps int

	// MasterSeed feeds the per-experiment seed derivation.
	MasterSeed int64
	// Parallelism bounds concurrent experiments: 0 selects GOMAXPROCS, 1
	// runs sequentially. Results do not depend on it.
	Parallelism int
	// Shards selects each experiment's engine: 0 (the default) runs the
	// sequential engine; >= 1 runs the epoch-sharded engine with that many
	// intra-run workers. Sharded results are byte-identical for every value
	// >= 1 (but intentionally differ from the sequential engine; see
	// DESIGN.md §13). The total worker count is roughly
	// Parallelism × Shards, so keep the product near GOMAXPROCS.
	Shards int

	// Seeder, when set, overrides the derived per-run seed. It must be a
	// pure function of its arguments; the derivation exists so results
	// stay independent of scheduling.
	Seeder func(kernel, policy string, rep int) int64
	// Observe, when set, may return a fresh Probe per experiment (called
	// from concurrent workers; one probe observes exactly one run).
	Observe func(kernel, policy string, rep int) *Probe
	// Probe, when set, records the sweep's progress events (sweep.start,
	// exp.done per config in canonical order, sweep.done).
	Probe *Probe
	// OnProgress, when set, is called from a single goroutine as
	// experiments finish, in completion order: done of total, the
	// finished config's key, and its error if it failed.
	OnProgress func(done, total int, key string, err error)

	// Faults, when set, injects the plan's faults into every experiment of
	// the grid (each run gets its own deterministic injector derived from
	// the plan and the run seed — the determinism contract above covers
	// faulted sweeps too). Nil or an inactive plan runs the grid fault-free.
	Faults *FaultPlan

	// Runtime, when set, records host wall-clock spans for the sweep pool
	// and every run in it (see RuntimeCollector). Strictly one-way, so
	// results are unchanged; nil disables at zero cost.
	Runtime *RuntimeCollector
}

// SweepResults holds a sweep's outcome grouped per kernel, plus the
// per-config errors in canonical (kernel-major, policy, rep-minor) order.
type SweepResults struct {
	// Kernels in sweep order.
	Kernels []string
	// ByKernel maps each kernel to its policy × rep results, ready for
	// the same reporting used by single-workload experiments.
	ByKernel map[string]*Results
	// Keys and Errs are aligned with the sweep's canonical config order;
	// Errs entries are nil for successful experiments.
	Keys []string
	Errs []error
}

// FirstErr returns the first per-config error in canonical order, or nil.
func (s *SweepResults) FirstErr() error {
	for _, err := range s.Errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes the sweep. Per-experiment failures (including panics in a
// workload or policy) do not abort the sweep; they surface via FirstErr
// and the Errs slice, and the failed experiment's metrics stay zero.
func (s Sweep) Run() (*SweepResults, error) {
	if s.Machine == nil {
		return nil, errors.New("spcd: sweep needs a Machine")
	}
	suite := s.Suite
	if suite == "" {
		suite = "nas"
	}
	kernels := s.Kernels
	if len(kernels) == 0 {
		switch suite {
		case "nas":
			kernels = NPBNames
		case "parsec":
			kernels = ParsecNames
		default:
			return nil, fmt.Errorf("spcd: unknown suite %q (want nas or parsec)", suite)
		}
	}
	class := s.Class
	if class.Name == "" {
		class = ClassSmall
	}
	threads := s.Threads
	if threads <= 0 {
		threads = 32
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = PolicyNames
	}
	reps := s.Reps
	if reps <= 0 {
		reps = 3
	}

	configs := sweep.Product(suite, kernels, class, threads, policies, reps)
	runner := sweep.Runner{
		Machine:     s.Machine,
		MasterSeed:  s.MasterSeed,
		Parallelism: s.Parallelism,
		Probe:       s.Probe,
		FaultPlan:   s.Faults,
		Shards:      s.Shards,
		Runtime:     s.Runtime,
	}
	if s.Seeder != nil {
		//lint:ignore determinism-flow Seeder is the user-supplied seed derivation itself; its output becomes the run seed, so determinism is definitional here.
		runner.Seeder = func(c sweep.Config) int64 { return s.Seeder(c.Kernel, c.Policy, c.Rep) }
	}
	if s.Observe != nil {
		//lint:ignore determinism-flow Observe is a user-supplied probe factory invoked once per run before simulation; probes record events, they do not steer them.
		runner.Observe = func(c sweep.Config) *obs.Probe { return s.Observe(c.Kernel, c.Policy, c.Rep) }
	}
	if s.OnProgress != nil {
		done := 0
		runner.OnResult = func(r sweep.Result) {
			done++
			s.OnProgress(done, len(configs), r.Config.Key(), r.Err)
		}
	}
	rs, err := runner.Run(configs)
	if err != nil {
		return nil, err
	}

	out := &SweepResults{
		Kernels:  append([]string(nil), kernels...),
		ByKernel: make(map[string]*Results, len(kernels)),
		Keys:     make([]string, len(rs)),
		Errs:     make([]error, len(rs)),
	}
	i := 0
	for _, kernel := range kernels {
		res := &Results{
			Workload: kernel,
			ByPolicy: make(map[string][]Metrics, len(policies)),
			order:    append([]string(nil), policies...),
		}
		for _, pol := range policies {
			ms := make([]Metrics, reps)
			for r := 0; r < reps; r++ {
				out.Keys[i] = rs[i].Config.Key()
				out.Errs[i] = rs[i].Err
				ms[r] = rs[i].Metrics
				i++
			}
			res.ByPolicy[pol] = ms
		}
		out.ByKernel[kernel] = res
	}
	return out, nil
}

// DeriveSweepSeed exposes the sweep runner's (masterSeed, configKey) → run
// seed derivation, so external tools can reproduce a single experiment out
// of an archived sweep without re-running the grid.
func DeriveSweepSeed(masterSeed int64, configKey string) int64 {
	return sweep.DeriveSeed(masterSeed, configKey)
}
