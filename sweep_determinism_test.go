package spcd_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"spcd"
)

// renderSweep runs the full kernel × policy grid at the given worker count
// and renders every experiment's metrics — including the detected
// communication matrix, byte for byte — into one string.
func renderSweep(t *testing.T, parallel int, cls spcd.Class) string {
	t.Helper()
	res, err := spcd.Sweep{
		Machine:     spcd.DefaultMachine(),
		Class:       cls,
		Threads:     8,
		Reps:        1,
		MasterSeed:  12345,
		Parallelism: parallel,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, kernel := range res.Kernels {
		r := res.ByKernel[kernel]
		for _, pol := range r.Policies() {
			for _, m := range r.ByPolicy[pol] {
				fmt.Fprintf(&buf, "%s/%s:\n", kernel, pol)
				if m.CommMatrix != nil {
					if err := spcd.WriteMatrixCSV(&buf, m.CommMatrix); err != nil {
						t.Fatal(err)
					}
					m.CommMatrix = nil
				}
				fmt.Fprintf(&buf, "%+v\n", m)
			}
		}
	}
	return buf.String()
}

// TestSweepParallelismByteIdentical is the tentpole acceptance gate: the
// complete kernel × policy sweep produces byte-identical metrics (and
// detected communication matrices) whether it runs sequentially or on a 4-
// or 16-worker pool. SWEEP_CLASS selects the workload class — "test" by
// default so the race detector stays affordable; CI runs the full
// SWEEP_CLASS=small sweep without -race.
func TestSweepParallelismByteIdentical(t *testing.T) {
	clsName := os.Getenv("SWEEP_CLASS")
	if clsName == "" {
		clsName = "test"
	}
	cls, err := spcd.ClassByName(clsName)
	if err != nil {
		t.Fatalf("SWEEP_CLASS=%q: %v", clsName, err)
	}
	base := renderSweep(t, 1, cls)
	for _, workers := range []int{4, 16} {
		if got := renderSweep(t, workers, cls); got != base {
			t.Errorf("class %s sweep at parallelism %d differs from the sequential run", clsName, workers)
		}
	}
}
