#!/bin/sh
# verify.sh — the repo's full verification gate, referenced from ROADMAP.md.
# Runs the tier-1 build/tests plus the race detector and the spcdlint static
# analyzers (internal/analysis). CI and pre-merge checks should run exactly
# this.
#
# BENCH=1 ./verify.sh additionally runs the simulator throughput benchmarks
# (allocation counts via -benchmem) and refreshes BENCH_engine.json via
# cmd/perfbench. Opt-in because it adds minutes of wall time and its numbers
# are machine-dependent.
#
# OBS=1 ./verify.sh additionally runs a tiny traced simulation through
# cmd/spcdobs and validates that the emitted Chrome-trace JSON parses and
# the CSV time series is well-formed (-check re-reads both artifacts).
set -eux

go build ./...
go vet ./...
go test -race ./...
go run ./cmd/spcdlint ./...

if [ "${BENCH:-0}" = "1" ]; then
	go test -run '^$' -bench=. -benchmem -benchtime=100x \
		./internal/vm ./internal/cache ./internal/engine
	go run ./cmd/perfbench -o BENCH_engine.json
fi

if [ "${OBS:-0}" = "1" ]; then
	obsdir=$(mktemp -d)
	go run ./cmd/spcdobs -bench CG -class test -threads 8 \
		-policies os,spcd -dir "$obsdir" -check
	rm -rf "$obsdir"
fi
