#!/bin/sh
# verify.sh — the repo's full verification gate, referenced from ROADMAP.md.
# Runs the tier-1 build/tests plus the race detector and the spcdlint static
# analyzers (internal/analysis). CI and pre-merge checks should run exactly
# this.
#
# BENCH=1 ./verify.sh additionally runs the simulator throughput benchmarks
# (allocation counts via -benchmem) and refreshes BENCH_engine.json via
# cmd/perfbench. Opt-in because it adds minutes of wall time and its numbers
# are machine-dependent.
set -eux

go build ./...
go vet ./...
go test -race ./...
go run ./cmd/spcdlint ./...

if [ "${BENCH:-0}" = "1" ]; then
	go test -run '^$' -bench=. -benchmem -benchtime=100x \
		./internal/vm ./internal/cache ./internal/engine
	go run ./cmd/perfbench -o BENCH_engine.json
fi
