#!/bin/sh
# verify.sh — the repo's full verification gate, referenced from ROADMAP.md
# and run verbatim by CI (.github/workflows/verify.yml). Runs the tier-1
# build/tests plus the race detector and the spcdlint static analyzers
# (internal/analysis). Pre-merge checks should run exactly this.
#
# BENCH=1 ./verify.sh additionally runs `make bench`: full-length
# microbenchmarks of the engine hot path and the canonical refresh of
# BENCH_engine.json (cmd/perfbench at -parallel 1, so timings are
# uncontended). Opt-in because it adds minutes of wall time and its numbers
# are machine-dependent.
#
# OBS=1 ./verify.sh additionally runs `make obs-smoke`: a tiny traced
# simulation through cmd/spcdobs whose -check flag re-reads the emitted
# Chrome-trace JSON and CSV time series and validates them. OBS_DIR overrides
# the artifact directory; by default a temporary directory is used and
# removed afterwards.
set -eux

go build ./...
go vet ./...
go test -race ./...
go run ./cmd/spcdlint ./...

if [ "${BENCH:-0}" = "1" ]; then
	make bench
fi

if [ "${OBS:-0}" = "1" ]; then
	if [ -n "${OBS_DIR:-}" ]; then
		make obs-smoke OBS_DIR="$OBS_DIR"
	else
		obsdir=$(mktemp -d)
		make obs-smoke OBS_DIR="$obsdir"
		rm -rf "$obsdir"
	fi
fi
